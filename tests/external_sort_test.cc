#include "storage/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/sharded_index.h"
#include "exp/presets.h"
#include "trace/types.h"
#include "util/rng.h"

namespace dtrace {
namespace {

TEST(ExternalSortCostTest, MatchesSection43Formula) {
  // Single in-memory run: one pass, 2N I/Os.
  EXPECT_EQ(ExternalSortPasses(8, 10), 1u);
  EXPECT_EQ(ExternalSortIoCost(8, 10), 16u);
  // 100 pages, 10 buffers: 10 runs, merged 9-way -> 2 merge rounds? 10 runs
  // / 9-way = 2 merge passes... ceil(10/9)=2 then 1: 3 passes total.
  EXPECT_EQ(ExternalSortPasses(100, 10), 3u);
  EXPECT_EQ(ExternalSortIoCost(100, 10), 600u);
  EXPECT_EQ(ExternalSortPasses(0, 10), 0u);
}

TEST(ExternalSorterTest, SortsSmallInput) {
  SimDisk disk;
  ExternalSorter<uint64_t> sorter(&disk, 3);
  const auto out = sorter.Sort({5, 1, 4, 2, 3});
  EXPECT_EQ(out, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
}

TEST(ExternalSorterTest, SortsEmptyInput) {
  SimDisk disk;
  ExternalSorter<uint64_t> sorter(&disk, 3);
  EXPECT_TRUE(sorter.Sort({}).empty());
}

TEST(ExternalSorterTest, SortsLargeInputWithSpills) {
  SimDisk disk;
  ExternalSorter<uint64_t> sorter(&disk, 3);  // tiny buffer forces merging
  Rng rng(1);
  std::vector<uint64_t> input;
  for (int i = 0; i < 20000; ++i) input.push_back(rng.Next() % 100000);
  std::vector<uint64_t> expected = input;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorter.Sort(input), expected);
  EXPECT_GT(disk.reads(), 0u);
  EXPECT_GT(disk.writes(), 0u);
}

TEST(ExternalSorterTest, SortsPresenceRecordsByEntity) {
  // The index-construction use case: group raw digital traces by entity.
  struct ByEntityTime {
    bool operator()(const PresenceRecord& a, const PresenceRecord& b) const {
      if (a.entity != b.entity) return a.entity < b.entity;
      return a.begin < b.begin;
    }
  };
  SimDisk disk;
  ExternalSorter<PresenceRecord, ByEntityTime> sorter(&disk, 4);
  Rng rng(2);
  std::vector<PresenceRecord> input;
  for (int i = 0; i < 5000; ++i) {
    const auto t = static_cast<TimeStep>(rng.NextBelow(100));
    input.push_back({static_cast<EntityId>(rng.NextBelow(50)),
                     static_cast<UnitId>(rng.NextBelow(20)), t, t + 1});
  }
  const auto out = sorter.Sort(input);
  ASSERT_EQ(out.size(), input.size());
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_FALSE(ByEntityTime{}(out[i], out[i - 1])) << "not sorted at " << i;
  }
}

TEST(ExternalSorterTest, IoCountTracksPredictedCost) {
  // The measured page I/O should be close to the Sec. 4.3 formula (the
  // formula assumes full pages; the last page of each run may be partial).
  SimDisk disk;
  const size_t buffer_pages = 4;
  ExternalSorter<uint64_t> sorter(&disk, buffer_pages);
  std::vector<uint64_t> input(ExternalSorter<uint64_t>::kPerPage * 64);
  Rng rng(3);
  for (auto& v : input) v = rng.Next();
  sorter.Sort(input);
  const uint64_t n_pages = 64;
  const uint64_t predicted = ExternalSortIoCost(n_pages, buffer_pages);
  const uint64_t measured = disk.reads() + disk.writes();
  EXPECT_GE(measured, predicted);
  // Final materialization adds one extra read pass.
  EXPECT_LE(measured, predicted + 2 * n_pages + 8);
}

TEST(ExternalSorterTest, SortIntoStreamsTheSameSequence) {
  // The streaming form consumes the final merge record by record instead of
  // writing it back to disk: same sequence, strictly less I/O (the final
  // run's write+read pass disappears).
  Rng rng(4);
  std::vector<uint64_t> input;
  for (int i = 0; i < 30000; ++i) input.push_back(rng.Next() % 50000);

  SimDisk sort_disk;
  ExternalSorter<uint64_t> sorter(&sort_disk, 4);
  const auto expected = sorter.Sort(input);
  const uint64_t sort_io = sort_disk.reads() + sort_disk.writes();

  SimDisk stream_disk;
  ExternalSorter<uint64_t> streamer(&stream_disk, 4);
  std::vector<uint64_t> streamed;
  streamed.reserve(input.size());
  streamer.SortInto(input, [&](const uint64_t& v) { streamed.push_back(v); });
  EXPECT_EQ(streamed, expected);
  EXPECT_LT(stream_disk.reads() + stream_disk.writes(), sort_io);
}

TEST(ExternalSorterTest, SortIntoEmptyInputEmitsNothing) {
  SimDisk disk;
  ExternalSorter<uint64_t> sorter(&disk, 3);
  size_t emitted = 0;
  sorter.SortInto({}, [&](const uint64_t&) { ++emitted; });
  EXPECT_EQ(emitted, 0u);
}

TEST(ExternalSorterTest, StreamedShardConstructionMatchesInMemoryBuild) {
  // The index-construction path this sorter exists for (Sec. 4.3): shard
  // runs streamed out of the external sort must yield byte-for-byte the
  // trees the all-in-memory partition builds, for any run size (sort
  // buffer budget) — streamed construction is purely an I/O layout choice.
  const Dataset d = MakeSynDataset(250, /*seed=*/19);
  const IndexOptions iopts{.num_functions = 64, .seed = 9};
  const ShardedIndex direct =
      ShardedIndex::Build(d.store, {.num_shards = 4, .index = iopts});
  for (size_t buffer_pages : {size_t{3}, size_t{4}, size_t{16}}) {
    const ShardedIndex streamed = ShardedIndex::Build(
        d.store, {.num_shards = 4,
                  .index = iopts,
                  .stream_build = true,
                  .stream_buffer_pages = buffer_pages});
    for (int s = 0; s < 4; ++s) {
      const MinSigTree& a = direct.shard(s).tree();
      const MinSigTree& b = streamed.shard(s).tree();
      ASSERT_EQ(a.num_nodes(), b.num_nodes()) << "pages " << buffer_pages;
      ASSERT_EQ(a.num_entities(), b.num_entities());
      for (uint32_t n = 0; n < a.num_nodes(); ++n) {
        EXPECT_EQ(a.node(n).level, b.node(n).level) << "node " << n;
        EXPECT_EQ(a.node(n).routing, b.node(n).routing) << "node " << n;
        EXPECT_EQ(a.node(n).value, b.node(n).value) << "node " << n;
        EXPECT_EQ(a.node(n).parent, b.node(n).parent) << "node " << n;
        EXPECT_EQ(a.node(n).children, b.node(n).children) << "node " << n;
        EXPECT_EQ(a.node(n).entities, b.node(n).entities) << "node " << n;
      }
    }
  }
}

TEST(ExternalSorterTest, PreservesDuplicates) {
  SimDisk disk;
  ExternalSorter<uint64_t> sorter(&disk, 3);
  std::vector<uint64_t> input(1000, 7);
  input.push_back(3);
  const auto out = sorter.Sort(input);
  EXPECT_EQ(out.size(), 1001u);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[1], 7u);
  EXPECT_EQ(out.back(), 7u);
}

}  // namespace
}  // namespace dtrace
