#include "storage/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/types.h"
#include "util/rng.h"

namespace dtrace {
namespace {

TEST(ExternalSortCostTest, MatchesSection43Formula) {
  // Single in-memory run: one pass, 2N I/Os.
  EXPECT_EQ(ExternalSortPasses(8, 10), 1u);
  EXPECT_EQ(ExternalSortIoCost(8, 10), 16u);
  // 100 pages, 10 buffers: 10 runs, merged 9-way -> 2 merge rounds? 10 runs
  // / 9-way = 2 merge passes... ceil(10/9)=2 then 1: 3 passes total.
  EXPECT_EQ(ExternalSortPasses(100, 10), 3u);
  EXPECT_EQ(ExternalSortIoCost(100, 10), 600u);
  EXPECT_EQ(ExternalSortPasses(0, 10), 0u);
}

TEST(ExternalSorterTest, SortsSmallInput) {
  SimDisk disk;
  ExternalSorter<uint64_t> sorter(&disk, 3);
  const auto out = sorter.Sort({5, 1, 4, 2, 3});
  EXPECT_EQ(out, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
}

TEST(ExternalSorterTest, SortsEmptyInput) {
  SimDisk disk;
  ExternalSorter<uint64_t> sorter(&disk, 3);
  EXPECT_TRUE(sorter.Sort({}).empty());
}

TEST(ExternalSorterTest, SortsLargeInputWithSpills) {
  SimDisk disk;
  ExternalSorter<uint64_t> sorter(&disk, 3);  // tiny buffer forces merging
  Rng rng(1);
  std::vector<uint64_t> input;
  for (int i = 0; i < 20000; ++i) input.push_back(rng.Next() % 100000);
  std::vector<uint64_t> expected = input;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorter.Sort(input), expected);
  EXPECT_GT(disk.reads(), 0u);
  EXPECT_GT(disk.writes(), 0u);
}

TEST(ExternalSorterTest, SortsPresenceRecordsByEntity) {
  // The index-construction use case: group raw digital traces by entity.
  struct ByEntityTime {
    bool operator()(const PresenceRecord& a, const PresenceRecord& b) const {
      if (a.entity != b.entity) return a.entity < b.entity;
      return a.begin < b.begin;
    }
  };
  SimDisk disk;
  ExternalSorter<PresenceRecord, ByEntityTime> sorter(&disk, 4);
  Rng rng(2);
  std::vector<PresenceRecord> input;
  for (int i = 0; i < 5000; ++i) {
    const auto t = static_cast<TimeStep>(rng.NextBelow(100));
    input.push_back({static_cast<EntityId>(rng.NextBelow(50)),
                     static_cast<UnitId>(rng.NextBelow(20)), t, t + 1});
  }
  const auto out = sorter.Sort(input);
  ASSERT_EQ(out.size(), input.size());
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_FALSE(ByEntityTime{}(out[i], out[i - 1])) << "not sorted at " << i;
  }
}

TEST(ExternalSorterTest, IoCountTracksPredictedCost) {
  // The measured page I/O should be close to the Sec. 4.3 formula (the
  // formula assumes full pages; the last page of each run may be partial).
  SimDisk disk;
  const size_t buffer_pages = 4;
  ExternalSorter<uint64_t> sorter(&disk, buffer_pages);
  std::vector<uint64_t> input(ExternalSorter<uint64_t>::kPerPage * 64);
  Rng rng(3);
  for (auto& v : input) v = rng.Next();
  sorter.Sort(input);
  const uint64_t n_pages = 64;
  const uint64_t predicted = ExternalSortIoCost(n_pages, buffer_pages);
  const uint64_t measured = disk.reads() + disk.writes();
  EXPECT_GE(measured, predicted);
  // Final materialization adds one extra read pass.
  EXPECT_LE(measured, predicted + 2 * n_pages + 8);
}

TEST(ExternalSorterTest, PreservesDuplicates) {
  SimDisk disk;
  ExternalSorter<uint64_t> sorter(&disk, 3);
  std::vector<uint64_t> input(1000, 7);
  input.push_back(3);
  const auto out = sorter.Sort(input);
  EXPECT_EQ(out.size(), 1001u);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[1], 7u);
  EXPECT_EQ(out.back(), 7u);
}

}  // namespace
}  // namespace dtrace
