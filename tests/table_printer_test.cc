#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace dtrace {
namespace {

TEST(TablePrinterTest, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 3), "1.235");
  EXPECT_EQ(TablePrinter::Fmt(uint64_t{42}), "42");
  EXPECT_EQ(TablePrinter::Fmt(int64_t{-7}), "-7");
}

TEST(TablePrinterTest, TracksRows) {
  TablePrinter t({"a", "b"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinterTest, PrintsAlignedTable) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1.00"});
  t.AddRow({"longer", "2.25"});
  char buf[512] = {0};
  std::FILE* mem = fmemopen(buf, sizeof(buf) - 1, "w");
  ASSERT_NE(mem, nullptr);
  t.Print(mem);
  std::fclose(mem);
  const std::string out(buf);
  EXPECT_NE(out.find("| name  "), std::string::npos);
  EXPECT_NE(out.find("| longer"), std::string::npos);
  EXPECT_NE(out.find("2.25"), std::string::npos);
}

}  // namespace
}  // namespace dtrace
