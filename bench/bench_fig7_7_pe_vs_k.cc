// Figure 7.7 — PE vs. result size k: the MinSigTree with 1000 and 2000
// hash functions against the frequent-pattern bitmap baseline (Sec. 7.2).
// Expected shape: MinSigTree PE degrades mildly as k grows; the baseline's
// PE is far worse (near 1.0) at every k — the headline result.
#include "baseline/cluster_index.h"
#include "bench/bench_util.h"

namespace dtrace::bench {
namespace {

void Run(const NamedDataset& nd) {
  const int m = nd.dataset.hierarchy->num_levels();
  PolynomialLevelMeasure measure(m);
  const auto queries = SampleQueries(*nd.dataset.store, 12, 707);

  const auto idx1000 = DigitalTraceIndex::Build(
      nd.dataset.store, {.num_functions = 1000, .seed = 13});
  const auto idx2000 = DigitalTraceIndex::Build(
      nd.dataset.store, {.num_functions = 2000, .seed = 13});
  Timer baseline_timer;
  const auto baseline = ClusterBitmapIndex::Build(*nd.dataset.store, {});
  const double baseline_build = baseline_timer.ElapsedSeconds();

  PrintHeader("Figure 7.7", "PE vs result size k");
  PrintDatasetInfo(nd);
  std::printf("baseline: %zu groups, built in %.2fs\n",
              baseline.num_groups(), baseline_build);
  TablePrinter t({"k", "PE nh=1000", "PE nh=2000", "PE baseline",
                  "baseline/minsig factor"});
  const auto n = nd.dataset.num_entities();
  for (int k : {1, 10, 20, 30, 40, 50, 60, 70, 80, 90}) {
    const double pe1 = MeasurePe(idx1000, measure, queries, k).mean_pe;
    const double pe2 = MeasurePe(idx2000, measure, queries, k).mean_pe;
    double pe_base = 0.0;
    for (EntityId q : queries) {
      pe_base += baseline.Query(q, k, measure)
                     .stats.pruning_effectiveness(n, k);
    }
    pe_base /= queries.size();
    t.AddRow({std::to_string(k), TablePrinter::Fmt(pe1, 4),
              TablePrinter::Fmt(pe2, 4), TablePrinter::Fmt(pe_base, 4),
              TablePrinter::Fmt(pe_base / std::max(1e-4, pe2), 1)});
  }
  t.Print();
}

}  // namespace
}  // namespace dtrace::bench

int main() {
  for (const auto& nd : dtrace::bench::BothDatasets(2000)) {
    dtrace::bench::Run(nd);
  }
  return 0;
}
