// Extension bench: the exact MinSigTree against classic MinHash + LSH
// banding (Sec. 2.3) and against epsilon-approximate MinSigTree queries —
// the recall / work trade-off the paper motivates generalizing away from
// Jaccard-bound approximate retrieval.
#include "bench/bench_util.h"
#include "hash/hierarchical_hasher.h"
#include "lsh/banding_index.h"

namespace dtrace::bench {
namespace {

double RecallVs(const TopKResult& approx, const TopKResult& truth) {
  int found = 0, total = 0;
  for (const auto& t : truth.items) {
    if (t.score <= 0.0) continue;
    ++total;
    for (const auto& a : approx.items) {
      if (a.entity == t.entity) { ++found; break; }
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(found) / total;
}

void Run(const NamedDataset& nd) {
  const int m = nd.dataset.hierarchy->num_levels();
  PolynomialLevelMeasure measure(m);
  const auto queries = SampleQueries(*nd.dataset.store, 15, 404);
  const auto exact = DigitalTraceIndex::Build(nd.dataset.store,
                                              {.num_functions = 512, .seed = 1});

  PrintHeader("LSH / approximation comparison", "recall vs work (k=10)");
  PrintDatasetInfo(nd);
  TablePrinter t({"method", "recall", "mean checked", "PE"});
  const auto n = nd.dataset.num_entities();

  {  // exact reference
    const auto pe = MeasurePe(exact, measure, queries, 10);
    t.AddRow({"MinSigTree exact", "1.000",
              TablePrinter::Fmt(pe.mean_entities_checked, 1),
              TablePrinter::Fmt(pe.mean_pe, 4)});
  }
  for (double eps : {0.2, 1.0}) {
    QueryOptions opts;
    opts.approximation_epsilon = eps;
    double recall = 0, checked = 0, pe = 0;
    for (EntityId q : queries) {
      const auto a = exact.Query(q, 10, measure, opts);
      recall += RecallVs(a, exact.BruteForce(q, 10, measure));
      checked += static_cast<double>(a.stats.entities_checked);
      pe += a.stats.pruning_effectiveness(n, 10);
    }
    t.AddRow({"MinSigTree eps=" + TablePrinter::Fmt(eps, 1),
              TablePrinter::Fmt(recall / queries.size(), 3),
              TablePrinter::Fmt(checked / queries.size(), 1),
              TablePrinter::Fmt(pe / queries.size(), 4)});
  }
  for (auto [bands, rows] : {std::pair<int, int>{32, 4}, {16, 8}}) {
    HierarchicalMinHasher hasher(*nd.dataset.hierarchy, nd.dataset.horizon,
                                 bands * rows, /*seed=*/2);
    MinHashBandingIndex lsh(*nd.dataset.store, hasher,
                            {.bands = bands, .rows = rows});
    double recall = 0, checked = 0, pe = 0;
    for (EntityId q : queries) {
      const auto a = lsh.Query(q, 10, measure);
      recall += RecallVs(a, exact.BruteForce(q, 10, measure));
      checked += static_cast<double>(a.stats.entities_checked);
      pe += a.stats.pruning_effectiveness(n, 10);
    }
    t.AddRow({"LSH b=" + std::to_string(bands) + " r=" + std::to_string(rows),
              TablePrinter::Fmt(recall / queries.size(), 3),
              TablePrinter::Fmt(checked / queries.size(), 1),
              TablePrinter::Fmt(pe / queries.size(), 4)});
  }
  t.Print();
}

}  // namespace
}  // namespace dtrace::bench

int main() {
  for (const auto& nd : dtrace::bench::BothDatasets(2000)) {
    dtrace::bench::Run(nd);
  }
  return 0;
}
