// Figure 7.8 — indexing cost: (a) pre-processing time vs. number of hash
// functions (expected: near-linear in nh, as signature computation
// dominates); (b) MinSigTree size vs. nh (expected: grows with nh, but tiny
// relative to the data). Also reports the Sec. 4.3 external-sort I/O cost
// of grouping raw records by entity under a constrained buffer.
#include "bench/bench_util.h"
#include "storage/external_sort.h"
#include "util/parallel.h"

namespace dtrace::bench {
namespace {

void Run(const NamedDataset& nd) {
  PrintHeader("Figure 7.8", "indexing cost vs number of hash functions");
  PrintDatasetInfo(nd);
  TablePrinter t({"nh", "index time (s)", "tree size (KB)", "tree nodes",
                  "hasher tables (MB)"});
  // num_threads = 1: Fig 7.8(a) reproduces the paper's serial build cost,
  // so the curve stays comparable across machines and with prior runs; the
  // scaling table below is where parallelism is measured.
  for (int nh : {200, 400, 600, 800, 1200, 1600, 2000}) {
    const auto index = DigitalTraceIndex::Build(
        nd.dataset.store, PresetIndexOptions(nh, /*num_threads=*/1));
    t.AddRow({std::to_string(nh),
              TablePrinter::Fmt(index.build_seconds(), 2),
              TablePrinter::Fmt(index.IndexMemoryBytes() / 1024.0, 1),
              TablePrinter::Fmt(static_cast<uint64_t>(index.tree().num_nodes())),
              TablePrinter::Fmt(index.HasherMemoryBytes() / 1048576.0, 1)});
  }
  t.Print();

  // Parallel-build scaling: the per-entity signature loop of Build is
  // embarrassingly parallel; sweep the num_threads knob at a fixed nh.
  // num_threads = 1 is the historical serial build; the resulting index is
  // identical at every thread count (only wall-clock changes).
  const int hw = ResolveThreadCount(0);
  std::printf("\nparallel index build (nh=800, hardware_concurrency=%d)\n",
              hw);
  TablePrinter p({"threads", "build time (s)", "speedup vs 1"});
  double serial_secs = 0.0;
  std::vector<int> sweep = {1, 2, 4};
  if (hw > 4) sweep.push_back(hw);
  for (int threads : sweep) {
    const auto index = DigitalTraceIndex::Build(
        nd.dataset.store, PresetIndexOptions(/*num_functions=*/800, threads));
    if (threads == 1) serial_secs = index.build_seconds();
    p.AddRow({std::to_string(threads),
              TablePrinter::Fmt(index.build_seconds(), 2),
              TablePrinter::Fmt(
                  index.build_seconds() > 0
                      ? serial_secs / index.build_seconds()
                      : 0.0,
                  2)});
  }
  p.Print();

  // Sec. 4.3's preprocessing: sort raw records by entity with a B-way
  // external merge sort and compare measured I/O with the formula.
  struct ByEntity {
    bool operator()(const PresenceRecord& a, const PresenceRecord& b) const {
      return a.entity != b.entity ? a.entity < b.entity : a.begin < b.begin;
    }
  };
  SimDisk disk;
  const size_t buffers = 8;
  ExternalSorter<PresenceRecord, ByEntity> sorter(&disk, buffers);
  Timer timer;
  const auto sorted = sorter.Sort(nd.dataset.records);
  const uint64_t n_pages =
      (nd.dataset.records.size() + sorter.kPerPage - 1) / sorter.kPerPage;
  std::printf(
      "external sort (Sec. 4.3): %zu records, %llu pages, B=%zu buffers -> "
      "%llu I/Os measured vs %llu predicted, %.2fs\n",
      sorted.size(), static_cast<unsigned long long>(n_pages), buffers,
      static_cast<unsigned long long>(disk.reads() + disk.writes()),
      static_cast<unsigned long long>(ExternalSortIoCost(n_pages, buffers)),
      timer.ElapsedSeconds());
}

}  // namespace
}  // namespace dtrace::bench

int main() {
  for (const auto& nd : dtrace::bench::BothDatasets(2000)) {
    dtrace::bench::Run(nd);
  }
  return 0;
}
