#ifndef DTRACE_BENCH_BENCH_UTIL_H_
#define DTRACE_BENCH_BENCH_UTIL_H_

// Shared plumbing for the figure-reproduction benches. Each bench binary
// regenerates one figure of the paper's Chapter 7 as an aligned text table;
// EXPERIMENTS.md records paper-vs-measured shapes.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/association.h"
#include "core/index.h"
#include "exp/harness.h"
#include "exp/presets.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace dtrace::bench {

struct NamedDataset {
  std::string name;
  Dataset dataset;
};

/// The two evaluation datasets at the given scale (SYN Sec. 7.1 + the
/// REAL-data substitute).
inline std::vector<NamedDataset> BothDatasets(uint32_t entities) {
  std::vector<NamedDataset> out;
  out.push_back({"REAL", MakeRealDataset(entities)});
  out.push_back({"SYN", MakeSynDataset(entities)});
  return out;
}

inline void PrintHeader(const char* figure, const char* what) {
  std::printf("\n=== %s: %s ===\n", figure, what);
}

inline void PrintDatasetInfo(const NamedDataset& nd) {
  std::printf(
      "[%s] |E|=%u base_units=%u horizon=%u m=%d mean_C=%.1f records=%zu\n",
      nd.name.c_str(), nd.dataset.num_entities(),
      nd.dataset.hierarchy->num_base_units(), nd.dataset.horizon,
      nd.dataset.hierarchy->num_levels(), nd.dataset.store->mean_base_cells(),
      nd.dataset.records.size());
}

/// Minimal machine-readable bench output: rows of scalar fields serialized
/// as {"bench": <name>, "rows": [{...}, ...], "counters": {...}} into
/// BENCH_<name>.json in the working directory, so CI can track the perf
/// trajectory across PRs without scraping the human-facing tables. The
/// counters section carries run-wide perf signals (lock_wait_seconds,
/// prefetch_hits, ...) accumulated across rows via Counter().
class BenchJson {
 public:
  class Row {
   public:
    Row& Num(const char* key, double v) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "\"%s\": %.10g", key, v);
      fields_.push_back(buf);
      return *this;
    }
    Row& Int(const char* key, uint64_t v) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "\"%s\": %llu", key,
                    static_cast<unsigned long long>(v));
      fields_.push_back(buf);
      return *this;
    }
    Row& Str(const char* key, const std::string& v) {
      std::string out = "\"";
      out += key;
      out += "\": \"";
      for (char c : v) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      fields_.push_back(std::move(out));
      return *this;
    }

   private:
    friend class BenchJson;
    std::vector<std::string> fields_;
  };

  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Accumulates `v` into the run-wide counter `key` (first use creates it
  /// at 0). Counters land in a top-level "counters" object.
  void Counter(const std::string& key, double v) {
    for (auto& [k, total] : counters_) {
      if (k == key) {
        total += v;
        return;
      }
    }
    counters_.emplace_back(key, v);
  }

  /// Writes BENCH_<bench>.json and prints the path (skips on fopen error,
  /// e.g. a read-only working directory).
  void Write() const {
    const std::string path = "BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::printf("(could not write %s)\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"rows\": [", bench_.c_str());
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s{", r == 0 ? "" : ", ");
      for (size_t i = 0; i < rows_[r].fields_.size(); ++i) {
        std::fprintf(f, "%s%s", i == 0 ? "" : ", ",
                     rows_[r].fields_[i].c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "]");
    if (!counters_.empty()) {
      std::fprintf(f, ", \"counters\": {");
      for (size_t i = 0; i < counters_.size(); ++i) {
        std::fprintf(f, "%s\"%s\": %.10g", i == 0 ? "" : ", ",
                     counters_[i].first.c_str(), counters_[i].second);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string bench_;
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, double>> counters_;
};

}  // namespace dtrace::bench

#endif  // DTRACE_BENCH_BENCH_UTIL_H_
