#ifndef DTRACE_BENCH_BENCH_UTIL_H_
#define DTRACE_BENCH_BENCH_UTIL_H_

// Shared plumbing for the figure-reproduction benches. Each bench binary
// regenerates one figure of the paper's Chapter 7 as an aligned text table;
// EXPERIMENTS.md records paper-vs-measured shapes.

#include <cstdio>
#include <string>
#include <vector>

#include "core/association.h"
#include "core/index.h"
#include "exp/harness.h"
#include "exp/presets.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace dtrace::bench {

struct NamedDataset {
  std::string name;
  Dataset dataset;
};

/// The two evaluation datasets at the given scale (SYN Sec. 7.1 + the
/// REAL-data substitute).
inline std::vector<NamedDataset> BothDatasets(uint32_t entities) {
  std::vector<NamedDataset> out;
  out.push_back({"REAL", MakeRealDataset(entities)});
  out.push_back({"SYN", MakeSynDataset(entities)});
  return out;
}

inline void PrintHeader(const char* figure, const char* what) {
  std::printf("\n=== %s: %s ===\n", figure, what);
}

inline void PrintDatasetInfo(const NamedDataset& nd) {
  std::printf(
      "[%s] |E|=%u base_units=%u horizon=%u m=%d mean_C=%.1f records=%zu\n",
      nd.name.c_str(), nd.dataset.num_entities(),
      nd.dataset.hierarchy->num_base_units(), nd.dataset.horizon,
      nd.dataset.hierarchy->num_levels(), nd.dataset.store->mean_base_cells(),
      nd.dataset.records.size());
}

}  // namespace dtrace::bench

#endif  // DTRACE_BENCH_BENCH_UTIL_H_
