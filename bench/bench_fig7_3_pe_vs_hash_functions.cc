// Figure 7.3 — PE vs. the number of hash functions, measured against the
// analytical model of Sec. 6.3 (Eq. 6.12-6.15). Expected shape: PE (the
// fraction of entities checked; lower is better) drops as nh grows, with
// diminishing returns once entities become unique; the prediction tracks the
// measurement but is slightly optimistic (Sec. 7.3 discusses why).
#include "analytics/pe_model.h"
#include "bench/bench_util.h"

namespace dtrace::bench {
namespace {

void Run(const NamedDataset& nd) {
  const int m = nd.dataset.hierarchy->num_levels();
  PolynomialLevelMeasure measure(m);
  const auto queries = SampleQueries(*nd.dataset.store, 15, 303);
  const auto predict_queries = SampleQueries(*nd.dataset.store, 4, 304);
  constexpr int kK = 10;

  PrintHeader("Figure 7.3", "PE vs number of hash functions (k=10)");
  PrintDatasetInfo(nd);
  TablePrinter t({"nh", "PE measured", "PE predicted", "mean checked",
                  "build (s)"});
  for (int nh : {100, 200, 400, 600, 800, 1200, 1600, 2000}) {
    // num_threads = 1 keeps the reported build time machine-independent.
    const auto index = DigitalTraceIndex::Build(
        nd.dataset.store,
        {.num_functions = nh, .seed = 7, .num_threads = 1});
    const auto pe = MeasurePe(index, measure, queries, kK);
    const auto pred = PredictPeForDataset(*nd.dataset.store, measure, nh, kK,
                                          predict_queries);
    t.AddRow({std::to_string(nh), TablePrinter::Fmt(pe.mean_pe, 4),
              TablePrinter::Fmt(pred.pe, 4),
              TablePrinter::Fmt(pe.mean_entities_checked, 1),
              TablePrinter::Fmt(index.build_seconds(), 2)});
  }
  t.Print();
}

}  // namespace
}  // namespace dtrace::bench

int main() {
  for (const auto& nd : dtrace::bench::BothDatasets(2000)) {
    dtrace::bench::Run(nd);
  }
  return 0;
}
