// Scalability (Sec. 6.4): PE should be independent of data volume (|E| and
// C), indexing time linear in |E|, and query time linear in |E| at fixed PE.
//
// Two modes:
//   bench_scalability                 — the in-memory |E| sweep (default)
//   bench_scalability --disk [|E|] [--workers N] [--prefetch D] [--shards S]
//                     [--route] [--compress] [--no-checksums] [--queries Q]
//                     [--writer-threads W]
//       — the disk-resident preset: traces an order of magnitude past the
//       laptop presets, served from the paged storage substrate through
//       PagedTraceSource (sharded buffer pool, 25% of the data in memory),
//       queries batched through QueryMany on N workers (0 = auto) with a
//       leaf-prefetch lookahead of D records (0 = off). With --shards S > 1
//       the index is a ShardedIndex: S MinSigTrees over a stable-hash
//       entity partition, per-(query, shard) fan-out and a deterministic
//       top-k merge — bit-identical answers (tests/sharded_differential_
//       test.cc), measured here for throughput. --route turns on the
//       cross-shard pruning layer (coarse router + threshold propagation,
//       DESIGN-sharding.md) — still bit-identical, but late shards stop
//       re-checking candidates the global k-th score already beats.
//       --compress stores the trace pages delta-packed (util/codec.h):
//       fewer pages for the same pool fraction, bit-identical answers,
//       and compressed_bytes/raw_bytes counters in the JSON emission.
//       --no-checksums disables page-checksum verification on frame loads
//       (DESIGN-storage.md "Fault model and integrity") — the checksums-off
//       leg of CI's integrity-overhead gate; answers stay identical, the
//       "checksums" row field records which leg a row is. --queries Q sets
//       the batch size (default 8) — the tight same-run gates (checksums,
//       compression) use a larger batch so wall-clock qps is stable enough
//       for a 5% floor. --writer-threads W > 0 is the MIXED leg: W churn
//       threads remove/re-insert entities (through the epoch-versioned
//       commit path, with paged tree snapshots enabled so every commit
//       really packs and publishes) while the timed QueryMany runs — the
//       reads-during-writes configuration. Emits snapshot_publishes,
//       reader_blocked_ns, writer_blocked_ns and writer_ops counters
//       (informational in check_regression.py).
//       Registered with CTest so the concurrent storage-backed path is
//       exercised at scale on every run (plus Release-only 100K x 4-shard
//       and routed 20K presets). Emits a "counters" section
//       (lock_wait_seconds, prefetch_hits, shards_pruned, ...) alongside
//       the rows.
//   bench_scalability --snapshot [|E|] [--workers N] [--shards S]
//                     [--compress]
//       — the crash-safe persistence preset (DESIGN-storage.md "Snapshot
//       format and recovery protocol"): builds the index (a ShardedIndex
//       with --shards S > 1), saves a versioned snapshot, loads it back,
//       and times a QueryMany batch on the LOADED index. Emits
//       snapshot_save_seconds / restart_seconds / snapshot_bytes counters
//       (informational in check_regression.py) next to the post-load
//       queries_per_sec row that CI's perf-smoke job gates — restart must
//       stay build-free fast, and a restored index must not query slower
//       than a freshly built one. Load-vs-fresh bit-identity itself is the
//       differential harness's job (tests/snapshot_persistence_test.cc);
//       this preset spot-checks it on the batch before timing.
//   bench_scalability --paged-tree [|E|] [--workers N] [--pool-fraction F]
//                     [--compress]
//       — the paged-MinSigTree preset: the TREE (not the traces) lives in
//       SoA node pages behind a SimDisk-backed BufferPool capped at F of
//       the packed index size, so the search faults node pages while the
//       resident zone maps absorb part of the traffic. Spot-checks
//       bit-identity against the in-memory tree before timing. The small
//       20K leg runs under CTest; CI's perf-smoke job runs the 1M-entity
//       preset and gates it against bench/baselines/.
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench/bench_util.h"
#include "core/sharded_index.h"
#include "storage/paged_trace_source.h"
#include "storage/snapshot.h"

namespace dtrace::bench {
namespace {

void Run(BenchJson& json) {
  PrintHeader("Scalability (Sec. 6.4)", "PE and cost vs |E|");
  TablePrinter t({"|E|", "PE (k=10)", "mean query (ms)", "mean checked",
                  "index time (s)", "tree nodes"});
  for (uint32_t entities : {1000u, 2000u, 4000u, 8000u}) {
    Dataset d = MakeSynDataset(entities, /*seed=*/41);
    // num_threads = 1 keeps the reported index time machine-independent.
    const auto index =
        DigitalTraceIndex::Build(
            d.store, {.num_functions = 800, .seed = 41, .num_threads = 1});
    PolynomialLevelMeasure measure(d.hierarchy->num_levels());
    const auto queries = SampleQueries(*d.store, 12, 808);
    const auto pe = MeasurePe(index, measure, queries, 10);
    t.AddRow({std::to_string(entities), TablePrinter::Fmt(pe.mean_pe, 4),
              TablePrinter::Fmt(pe.mean_query_seconds * 1e3, 2),
              TablePrinter::Fmt(pe.mean_entities_checked, 1),
              TablePrinter::Fmt(index.build_seconds(), 2),
              TablePrinter::Fmt(static_cast<uint64_t>(index.tree().num_nodes()))});
    json.AddRow()
        .Str("mode", "memory")
        .Int("entities", entities)
        .Num("pe", pe.mean_pe)
        .Num("queries_per_sec",
             pe.mean_query_seconds > 0 ? 1.0 / pe.mean_query_seconds : 0.0)
        .Num("mean_entities_checked", pe.mean_entities_checked)
        .Int("pages_read", 0)
        .Num("hit_rate", 0.0)
        .Num("index_seconds", index.build_seconds());
  }
  t.Print();
}

void RunDisk(uint32_t entities, int workers, int prefetch, int shards,
             bool route, bool compress, bool verify_checksums,
             size_t num_queries, int writer_threads, BenchJson& json) {
  PrintHeader("Scalability (disk-resident)",
              "storage-backed queries past the laptop presets");
  Dataset d = MakeDiskResidentDataset(entities);
  const IndexOptions iopts =
      PresetIndexOptions(/*num_functions=*/200, /*num_threads=*/0);
  PolynomialLevelMeasure measure(d.hierarchy->num_levels());
  const auto queries = SampleQueries(*d.store, num_queries, 909);

  // One index or a sharded fleet of them; queries run through the same
  // QueryMany surface either way and answers are bit-identical.
  double index_seconds = 0.0;
  std::optional<DigitalTraceIndex> index;
  std::optional<ShardedIndex> sharded;
  size_t indexed_entities = 0;
  if (shards > 1) {
    sharded = ShardedIndex::Build(d.store,
                                  {.num_shards = shards, .index = iopts});
    index_seconds = sharded->build_seconds();
    indexed_entities = sharded->num_entities();
  } else {
    index = DigitalTraceIndex::Build(d.store, iopts);
    index_seconds = index->build_seconds();
    indexed_entities = index->tree().num_entities();
  }

  // Default (SSD-class) latencies; a quarter of the data fits in memory.
  PagedTraceSource::Options opts;
  opts.pool_fraction = 0.25;
  opts.compress = compress;
  opts.verify_checksums = verify_checksums;
  PagedTraceSource src(*d.store, opts);

  QueryOptions qopts;
  qopts.trace_source = &src;
  qopts.prefetch_depth = prefetch;
  qopts.cross_shard_routing = route;

  // Mixed leg: churn threads remove/re-insert through the epoch-versioned
  // commit path while the timed batch runs. Paged tree snapshots are
  // enabled so every commit genuinely packs and publishes (in-memory
  // backing — the leg measures coordination, not tree-page I/O). Each
  // churner owns the entity ids congruent to its thread index, so
  // remove/insert pairs never collide across threads and the final
  // membership equals the initial one.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writer_ops{0};
  std::vector<std::thread> churners;
  if (writer_threads > 0) {
    if (shards > 1) {
      sharded->EnablePagedTrees();
    } else {
      index->EnablePagedTree();
    }
    churners.reserve(static_cast<size_t>(writer_threads));
    for (int t = 0; t < writer_threads; ++t) {
      churners.emplace_back([&, t] {
        const uint32_t n = entities;
        uint64_t ops = 0;
        uint32_t e = static_cast<uint32_t>(t);
        while (!stop.load(std::memory_order_relaxed)) {
          if (shards > 1) {
            sharded->RemoveEntity(e);
            sharded->InsertEntity(e);
          } else {
            index->RemoveEntity(e);
            index->InsertEntity(e);
          }
          ++ops;
          e += static_cast<uint32_t>(writer_threads);
          if (e >= n) e = static_cast<uint32_t>(t);
        }
        writer_ops.fetch_add(ops, std::memory_order_relaxed);
      });
    }
  }

  Timer timer;
  const std::vector<TopKResult> results =
      shards > 1 ? sharded->QueryMany(queries, 10, measure, qopts, workers)
                 : index->QueryMany(queries, 10, measure, qopts, workers);
  const double wall = timer.ElapsedSeconds();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : churners) th.join();
  const DigitalTraceIndex::ConcurrencyStats cstats =
      shards > 1 ? sharded->concurrency_stats() : index->concurrency_stats();
  const auto pe = AggregatePe(results, indexed_entities, 10);
  const auto pool = src.pool_stats();

  std::printf(
      "|E|=%u pages=%zu pool_fraction=%.2f pool_shards=%zu index_shards=%d "
      "workers=%d prefetch=%d route=%d compress=%d (%.0f%% of raw) "
      "writer_threads=%d writer_ops=%llu snapshot_publishes=%llu "
      "reader_blocked_ms=%.2f writer_blocked_ms=%.2f "
      "index_s=%.2f\n"
      "queries=%zu PE=%.4f checked/query=%.1f pages/query=%.1f "
      "hit_rate=%.3f lock_wait=%.4fs prefetch_hits/query=%.1f "
      "shards_pruned/query=%.1f threshold_updates/query=%.1f "
      "qps=%.1f (wall, excl. modeled I/O %.2fs/query)\n",
      d.num_entities(), src.num_pages(), opts.pool_fraction,
      src.pool_shards(), shards, workers, prefetch, route ? 1 : 0,
      compress ? 1 : 0,
      100.0 * static_cast<double>(src.data_bytes()) /
          static_cast<double>(src.raw_bytes()),
      writer_threads,
      static_cast<unsigned long long>(writer_ops.load()),
      static_cast<unsigned long long>(cstats.snapshot_publishes),
      cstats.reader_blocked_ns / 1e6, cstats.writer_blocked_ns / 1e6,
      index_seconds, queries.size(), pe.mean_pe,
      pe.mean_entities_checked, pe.mean_pages_read, pool.hit_rate(),
      pool.lock_wait_seconds, pe.mean_prefetch_hits, pe.mean_shards_pruned,
      pe.mean_threshold_updates, queries.size() / wall, pe.mean_io_seconds);
  json.AddRow()
      .Str("mode", "disk")
      .Int("entities", d.num_entities())
      .Int("workers", static_cast<uint64_t>(workers))
      .Int("prefetch_depth", static_cast<uint64_t>(prefetch))
      // Informational, not a baseline match key (check_regression.py lists
      // "shards" and "routing" as measurement fields), so sharded/routed
      // runs gate directly against the single-shard baseline rows.
      .Int("shards", static_cast<uint64_t>(shards))
      .Int("routing", route ? 1 : 0)
      .Int("compressed", compress ? 1 : 0)
      .Int("checksums", verify_checksums ? 1 : 0)
      // Informational like "shards": mixed-leg rows gate against the same
      // read-only baselines, with a looser floor in CI.
      .Int("writer_threads", static_cast<uint64_t>(writer_threads))
      .Num("pe", pe.mean_pe)
      .Num("queries_per_sec", queries.size() / wall)
      .Num("mean_entities_checked", pe.mean_entities_checked)
      .Int("pages_read",
           static_cast<uint64_t>(pe.mean_pages_read * queries.size()))
      .Num("hit_rate", pool.hit_rate())
      .Num("index_seconds", index_seconds);
  json.Counter("lock_wait_seconds", pool.lock_wait_seconds);
  json.Counter("prefetch_hits", pe.mean_prefetch_hits * queries.size());
  json.Counter("pages_read", pe.mean_pages_read * queries.size());
  json.Counter("pool_evictions", static_cast<double>(pool.evictions));
  json.Counter("shards_pruned", pe.mean_shards_pruned * queries.size());
  json.Counter("threshold_updates",
               pe.mean_threshold_updates * queries.size());
  json.Counter("router_bound_evals",
               pe.mean_router_bound_evals * queries.size());
  // Storage-footprint counters: compressed_bytes is what the pages hold,
  // raw_bytes what the uncompressed writer would have occupied (equal when
  // --compress is off). Informational in check_regression.py.
  json.Counter("compressed_bytes", static_cast<double>(src.data_bytes()));
  json.Counter("raw_bytes", static_cast<double>(src.raw_bytes()));
  json.Counter("compression_ratio",
               static_cast<double>(src.raw_bytes()) /
                   static_cast<double>(src.data_bytes()));
  // Fault accounting — all zero on this healthy disk; emitted so the
  // regression checker's informational deltas cover them and a nonzero
  // value in a supposedly fault-free run is visible.
  json.Counter("io_retries", pe.mean_io_retries * queries.size());
  json.Counter("checksum_failures",
               pe.mean_checksum_failures * queries.size());
  json.Counter("faults_injected", pe.mean_faults_injected * queries.size());
  json.Counter("pages_quarantined",
               pe.mean_pages_quarantined * queries.size());
  // Reader/writer coordination counters (zero in read-only legs):
  // snapshot_publishes = writer-side repacks that published a fresh paged
  // snapshot; blocked_ns = wall time spent waiting on a shard latch.
  json.Counter("writer_ops", static_cast<double>(writer_ops.load()));
  json.Counter("snapshot_publishes",
               static_cast<double>(cstats.snapshot_publishes));
  json.Counter("reader_blocked_ns",
               static_cast<double>(cstats.reader_blocked_ns));
  json.Counter("writer_blocked_ns",
               static_cast<double>(cstats.writer_blocked_ns));
}

// The snapshot-restart preset (PR 10): save a built index, load it back,
// and measure what an operator restarting a serving process would feel —
// snapshot_save_seconds (writer-side cost of a commit), restart_seconds
// (load + validate, no rebuild), snapshot_bytes (on-disk footprint), and
// the post-load qps that CI gates against a baseline. The loaded index
// must answer the batch bit-identically to the builder it was saved from;
// the preset exits non-zero if it does not.
void RunSnapshot(uint32_t entities, int workers, int shards, bool compress,
                 BenchJson& json) {
  PrintHeader("Scalability (snapshot restart)",
              "save, load, and serve without rebuilding");
  Dataset d = MakeDiskResidentDataset(entities);
  const IndexOptions iopts =
      PresetIndexOptions(/*num_functions=*/200, /*num_threads=*/0);
  PolynomialLevelMeasure measure(d.hierarchy->num_levels());
  const auto queries = SampleQueries(*d.store, 8, 909);

  double index_seconds = 0.0;
  std::optional<DigitalTraceIndex> index;
  std::optional<ShardedIndex> sharded;
  if (shards > 1) {
    sharded = ShardedIndex::Build(d.store,
                                  {.num_shards = shards, .index = iopts});
    index_seconds = sharded->build_seconds();
  } else {
    index = DigitalTraceIndex::Build(d.store, iopts);
    index_seconds = index->build_seconds();
  }
  const std::vector<TopKResult> fresh =
      shards > 1 ? sharded->QueryMany(queries, 10, measure, {}, workers)
                 : index->QueryMany(queries, 10, measure, {}, workers);

  MemSnapshotEnv env;
  Timer save_timer;
  const Status saved = shards > 1 ? sharded->SaveSnapshot(&env, compress)
                                  : index->SaveSnapshot(&env, compress);
  const double save_seconds = save_timer.ElapsedSeconds();
  if (!saved.ok()) {
    std::fprintf(stderr, "FAIL: SaveSnapshot: %s\n", saved.message());
    std::exit(1);
  }
  uint64_t snapshot_bytes = 0;
  for (const auto& [name, bytes] : env.files()) snapshot_bytes += bytes.size();

  // Restart: everything the serving process needs, from the snapshot alone.
  LoadedIndex restored;
  LoadedShardedIndex restored_sharded;
  Timer load_timer;
  const Status loaded =
      shards > 1 ? ShardedIndex::LoadSnapshot(env, &restored_sharded)
                 : DigitalTraceIndex::LoadSnapshot(env, &restored);
  const double restart_seconds = load_timer.ElapsedSeconds();
  if (!loaded.ok()) {
    std::fprintf(stderr, "FAIL: LoadSnapshot: %s\n", loaded.message());
    std::exit(1);
  }

  auto run_loaded = [&] {
    return shards > 1 ? restored_sharded.index->QueryMany(queries, 10, measure,
                                                          {}, workers)
                      : restored.index->QueryMany(queries, 10, measure, {},
                                                  workers);
  };
  // Spot-check the differential harness's bit-identity contract, then time.
  const std::vector<TopKResult> check = run_loaded();
  for (size_t i = 0; i < check.size(); ++i) {
    if (check[i].items.size() != fresh[i].items.size()) {
      std::fprintf(stderr, "FAIL: loaded top-k differs from builder\n");
      std::exit(1);
    }
    for (size_t r = 0; r < check[i].items.size(); ++r) {
      if (check[i].items[r].entity != fresh[i].items[r].entity ||
          check[i].items[r].score != fresh[i].items[r].score) {
        std::fprintf(stderr,
                     "FAIL: loaded top-k differs from builder at query %zu "
                     "rank %zu\n",
                     i, r);
        std::exit(1);
      }
    }
  }
  Timer timer;
  const std::vector<TopKResult> results = run_loaded();
  const double wall = timer.ElapsedSeconds();
  const auto pe = AggregatePe(results, entities, 10);

  std::printf(
      "|E|=%u shards=%d compress=%d build_s=%.2f save_s=%.4f "
      "snapshot_mb=%.2f restart_s=%.4f (%.0fx faster than build) "
      "bit_identical=yes\n"
      "queries=%zu PE=%.4f checked/query=%.1f qps(post-load)=%.1f\n",
      entities, shards, compress ? 1 : 0, index_seconds, save_seconds,
      snapshot_bytes / 1048576.0, restart_seconds,
      restart_seconds > 0 ? index_seconds / restart_seconds : 0.0,
      queries.size(), pe.mean_pe, pe.mean_entities_checked,
      queries.size() / wall);
  json.AddRow()
      .Str("mode", "snapshot")
      .Int("entities", entities)
      .Int("workers", static_cast<uint64_t>(workers))
      // Informational like "shards"/"compressed" everywhere else: the
      // snapshot timing fields are measurements, never match keys, so a
      // baseline predating a knob change still gates post-load qps.
      .Int("shards", static_cast<uint64_t>(shards))
      .Int("compressed", compress ? 1 : 0)
      .Num("pe", pe.mean_pe)
      .Num("queries_per_sec", queries.size() / wall)
      .Num("mean_entities_checked", pe.mean_entities_checked)
      .Num("index_seconds", index_seconds)
      .Num("snapshot_save_seconds", save_seconds)
      .Num("restart_seconds", restart_seconds);
  json.Counter("snapshot_save_seconds", save_seconds);
  json.Counter("restart_seconds", restart_seconds);
  json.Counter("snapshot_bytes", static_cast<double>(snapshot_bytes));
}

// The paged-MinSigTree preset (PR 6): the tree itself lives in SoA pages
// behind a SimDisk-backed BufferPool capped below the packed index size,
// so the search faults node pages in and out while the resident zone maps
// absorb part of that traffic. Traces stay in memory (the preset isolates
// TREE paging; --disk measures the trace side). A handful of queries run
// against the in-memory tree first and must match the paged answers
// exactly — the bench-side spot check of the differential harness's
// bit-identity contract.
void RunPagedTree(uint32_t entities, int workers, double pool_fraction,
                  bool compress, BenchJson& json) {
  PrintHeader("Scalability (paged tree)",
              "node pages through the buffer pool, zone-map pruning");
  Dataset d = MakePagedTreeDataset(entities);
  // 64 functions keep the 1M-entity build tractable; PE is set by nh, not
  // |E| (Sec. 6.4), so the paging measurements transfer.
  const IndexOptions iopts = PresetIndexOptions(/*num_functions=*/64);
  auto index = DigitalTraceIndex::Build(d.store, iopts);
  PolynomialLevelMeasure measure(d.hierarchy->num_levels());
  const auto queries = SampleQueries(*d.store, 8, 909);

  const std::vector<TopKResult> oracle =
      index.QueryMany({queries.data(), 4}, 10, measure, {}, workers);

  PagedTreeOptions popts;
  popts.backing = PagedTreeOptions::Backing::kSimDisk;
  popts.disk.pool_fraction = pool_fraction;
  popts.compress = compress;
  index.EnablePagedTree(popts);
  const PagedMinSigTree& paged = index.paged_tree();
  const BufferPool* pool = paged.page_store().pool();
  const size_t pool_pages = pool != nullptr ? pool->capacity() : 0;
  if (pool_pages * kPageSize >= paged.PackedBytes()) {
    std::fprintf(stderr,
                 "FAIL: pool (%zu pages) must be smaller than the packed "
                 "index (%zu pages)\n",
                 pool_pages, paged.num_pages());
    std::exit(1);
  }

  const std::vector<TopKResult> spot =
      index.QueryMany({queries.data(), 4}, 10, measure, {}, workers);
  for (size_t i = 0; i < spot.size(); ++i) {
    if (spot[i].items.size() != oracle[i].items.size()) {
      std::fprintf(stderr, "FAIL: paged top-k differs from oracle\n");
      std::exit(1);
    }
    for (size_t r = 0; r < spot[i].items.size(); ++r) {
      if (spot[i].items[r].entity != oracle[i].items[r].entity ||
          spot[i].items[r].score != oracle[i].items[r].score) {
        std::fprintf(stderr,
                     "FAIL: paged top-k differs from oracle at query %zu "
                     "rank %zu\n",
                     i, r);
        std::exit(1);
      }
    }
  }

  Timer timer;
  const std::vector<TopKResult> results =
      index.QueryMany(queries, 10, measure, {}, workers);
  const double wall = timer.ElapsedSeconds();
  const auto pe = AggregatePe(results, index.tree().num_entities(), 10);
  const auto pstats =
      pool != nullptr ? pool->stats() : BufferPool::Stats{};

  std::printf(
      "|E|=%u nodes=%zu packed_pages=%zu (%.1f MB, %.0f%% of raw) "
      "zone_bytes=%.1f MB "
      "pool_pages=%zu (%.2fx) workers=%d compress=%d index_s=%.2f "
      "bit_identical=yes\n"
      "queries=%zu PE=%.4f checked/query=%.1f tree_reads/query=%.1f "
      "tree_hits/query=%.1f pool_hit_rate=%.3f qps=%.1f "
      "(wall, excl. modeled I/O %.3fs/query)\n",
      d.num_entities(), paged.num_nodes(), paged.num_pages(),
      paged.PackedBytes() / 1048576.0,
      100.0 * static_cast<double>(paged.PackedBytes()) /
          static_cast<double>(paged.RawBytes()),
      paged.ZoneBytes() / 1048576.0, pool_pages,
      static_cast<double>(pool_pages) / static_cast<double>(paged.num_pages()),
      workers, compress ? 1 : 0, index.build_seconds(), queries.size(),
      pe.mean_pe,
      pe.mean_entities_checked, pe.mean_tree_pages_read,
      pe.mean_tree_page_hits, pstats.hit_rate(), queries.size() / wall,
      pe.mean_io_seconds);
  json.AddRow()
      .Str("mode", "paged-tree")
      .Int("entities", d.num_entities())
      .Int("workers", static_cast<uint64_t>(workers))
      // Informational like "shards"/"routing": not a baseline match key.
      .Int("paged_tree", 1)
      .Int("compressed", compress ? 1 : 0)
      .Num("pe", pe.mean_pe)
      .Num("queries_per_sec", queries.size() / wall)
      .Num("mean_entities_checked", pe.mean_entities_checked)
      .Int("pages_read",
           static_cast<uint64_t>(pe.mean_tree_pages_read * queries.size()))
      .Num("hit_rate", pstats.hit_rate())
      .Num("index_seconds", index.build_seconds());
  json.Counter("tree_pages_read", pe.mean_tree_pages_read * queries.size());
  json.Counter("tree_page_hits", pe.mean_tree_page_hits * queries.size());
  json.Counter("pool_evictions", static_cast<double>(pstats.evictions));
  json.Counter("compressed_bytes", static_cast<double>(paged.PackedBytes()));
  json.Counter("raw_bytes", static_cast<double>(paged.RawBytes()));
  json.Counter("compression_ratio",
               static_cast<double>(paged.RawBytes()) /
                   static_cast<double>(paged.PackedBytes()));
}

}  // namespace
}  // namespace dtrace::bench

int main(int argc, char** argv) {
  dtrace::bench::BenchJson json("scalability");
  if (argc > 1 && std::strcmp(argv[1], "--disk") == 0) {
    uint32_t entities = 20000;
    int workers = 0;
    int prefetch = 0;
    int shards = 1;
    bool route = false;
    bool compress = false;
    bool verify_checksums = true;
    size_t num_queries = 8;
    int writer_threads = 0;
    int pos = 2;
    if (pos < argc && argv[pos][0] != '-') {
      entities = static_cast<uint32_t>(std::atoi(argv[pos]));
      ++pos;
    }
    for (; pos < argc; ++pos) {
      if (std::strcmp(argv[pos], "--route") == 0) {
        route = true;
      } else if (std::strcmp(argv[pos], "--compress") == 0) {
        compress = true;
      } else if (std::strcmp(argv[pos], "--no-checksums") == 0) {
        verify_checksums = false;
      } else if (pos + 1 >= argc) {
        break;
      } else if (std::strcmp(argv[pos], "--workers") == 0) {
        workers = std::atoi(argv[++pos]);
      } else if (std::strcmp(argv[pos], "--prefetch") == 0) {
        prefetch = std::atoi(argv[++pos]);
      } else if (std::strcmp(argv[pos], "--shards") == 0) {
        shards = std::atoi(argv[++pos]);
      } else if (std::strcmp(argv[pos], "--queries") == 0) {
        num_queries = static_cast<size_t>(std::atoi(argv[++pos]));
      } else if (std::strcmp(argv[pos], "--writer-threads") == 0) {
        writer_threads = std::atoi(argv[++pos]);
      }
    }
    dtrace::bench::RunDisk(entities, workers, prefetch, shards, route,
                           compress, verify_checksums, num_queries,
                           writer_threads, json);
  } else if (argc > 1 && std::strcmp(argv[1], "--snapshot") == 0) {
    uint32_t entities = 20000;
    int workers = 0;
    int shards = 1;
    bool compress = false;
    int pos = 2;
    if (pos < argc && argv[pos][0] != '-') {
      entities = static_cast<uint32_t>(std::atoi(argv[pos]));
      ++pos;
    }
    for (; pos < argc; ++pos) {
      if (std::strcmp(argv[pos], "--compress") == 0) {
        compress = true;
      } else if (pos + 1 >= argc) {
        break;
      } else if (std::strcmp(argv[pos], "--workers") == 0) {
        workers = std::atoi(argv[++pos]);
      } else if (std::strcmp(argv[pos], "--shards") == 0) {
        shards = std::atoi(argv[++pos]);
      }
    }
    dtrace::bench::RunSnapshot(entities, workers, shards, compress, json);
  } else if (argc > 1 && std::strcmp(argv[1], "--paged-tree") == 0) {
    uint32_t entities = 20000;
    int workers = 0;
    double pool_fraction = 0.25;
    bool compress = false;
    int pos = 2;
    if (pos < argc && argv[pos][0] != '-') {
      entities = static_cast<uint32_t>(std::atoi(argv[pos]));
      ++pos;
    }
    for (; pos < argc; ++pos) {
      if (std::strcmp(argv[pos], "--compress") == 0) {
        compress = true;
      } else if (pos + 1 >= argc) {
        break;
      } else if (std::strcmp(argv[pos], "--workers") == 0) {
        workers = std::atoi(argv[++pos]);
      } else if (std::strcmp(argv[pos], "--pool-fraction") == 0) {
        pool_fraction = std::atof(argv[++pos]);
      }
    }
    dtrace::bench::RunPagedTree(entities, workers, pool_fraction, compress,
                                json);
  } else {
    dtrace::bench::Run(json);
  }
  json.Write();
  return 0;
}
