// Scalability (Sec. 6.4): PE should be independent of data volume (|E| and
// C), indexing time linear in |E|, and query time linear in |E| at fixed PE.
#include "bench/bench_util.h"

namespace dtrace::bench {
namespace {

void Run() {
  PrintHeader("Scalability (Sec. 6.4)", "PE and cost vs |E|");
  TablePrinter t({"|E|", "PE (k=10)", "mean query (ms)", "mean checked",
                  "index time (s)", "tree nodes"});
  for (uint32_t entities : {1000u, 2000u, 4000u, 8000u}) {
    Dataset d = MakeSynDataset(entities, /*seed=*/41);
    // num_threads = 1 keeps the reported index time machine-independent.
    const auto index =
        DigitalTraceIndex::Build(
            d.store, {.num_functions = 800, .seed = 41, .num_threads = 1});
    PolynomialLevelMeasure measure(d.hierarchy->num_levels());
    const auto queries = SampleQueries(*d.store, 12, 808);
    const auto pe = MeasurePe(index, measure, queries, 10);
    t.AddRow({std::to_string(entities), TablePrinter::Fmt(pe.mean_pe, 4),
              TablePrinter::Fmt(pe.mean_query_seconds * 1e3, 2),
              TablePrinter::Fmt(pe.mean_entities_checked, 1),
              TablePrinter::Fmt(index.build_seconds(), 2),
              TablePrinter::Fmt(static_cast<uint64_t>(index.tree().num_nodes()))});
  }
  t.Print();
}

}  // namespace
}  // namespace dtrace::bench

int main() {
  dtrace::bench::Run();
  return 0;
}
