// Figure 7.2 — association degree distribution under different ADM
// parameters (u, v) in {2,5} x {2,5}: for each combination, the mean number
// of candidates per query whose degree lands in each bucket. The paper's
// takeaway — most entities bear low association with any query entity —
// should reproduce.
#include "bench/bench_util.h"

namespace dtrace::bench {
namespace {

void Run(const NamedDataset& nd) {
  const auto& store = *nd.dataset.store;
  const int m = nd.dataset.hierarchy->num_levels();
  const auto queries = SampleQueries(store, 20, 77);

  PrintHeader("Figure 7.2", "association degree distribution");
  PrintDatasetInfo(nd);
  TablePrinter t({"u,v", "deg=0", "(0,0.1]", "(0.1,0.2]", "(0.2,0.3]",
                  "(0.3,0.4]", "(0.4,0.5]", ">0.5"});
  for (double u : {2.0, 5.0}) {
    for (double v : {2.0, 5.0}) {
      PolynomialLevelMeasure measure(m, u, v);
      std::vector<uint64_t> counts(7, 0);
      for (EntityId q : queries) {
        for (EntityId e = 0; e < store.num_entities(); ++e) {
          if (e == q) continue;
          const double deg = ComputeDegree(measure, store, q, e);
          size_t b;
          if (deg == 0.0) {
            b = 0;
          } else if (deg > 0.5) {
            b = 6;
          } else {
            b = std::min<size_t>(1 + static_cast<size_t>(deg * 10.0), 5);
          }
          ++counts[b];
        }
      }
      std::vector<std::string> row = {
          TablePrinter::Fmt(u, 0) + "," + TablePrinter::Fmt(v, 0)};
      for (uint64_t c : counts) {
        row.push_back(
            TablePrinter::Fmt(c / static_cast<double>(queries.size()), 1));
      }
      t.AddRow(std::move(row));
    }
  }
  t.Print();
  std::printf(
      "(mean candidates per query entity falling in each degree bucket)\n");
}

}  // namespace
}  // namespace dtrace::bench

int main() {
  for (const auto& nd : dtrace::bench::BothDatasets(3000)) {
    dtrace::bench::Run(nd);
  }
  return 0;
}
