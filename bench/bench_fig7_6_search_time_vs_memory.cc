// Figure 7.6 — search time vs. memory size. Raw traces live on the
// simulated disk (PagedTraceSource); every exact candidate evaluation
// materializes the candidate's record through the shared LRU buffer pool
// whose capacity is a fraction of the data size — the real storage-backed
// query path, not the old access-hook emulation. Reported modeled time =
// wall time + modeled HDD I/O latency charged to the queries
// (DESIGN-storage.md). Expected shape: super-linear drop with memory,
// flattening around 40-50% of the data size.
#include <algorithm>

#include "bench/bench_util.h"
#include "storage/paged_trace_source.h"

namespace dtrace::bench {
namespace {

void Run(const NamedDataset& nd, BenchJson& json) {
  const int m = nd.dataset.hierarchy->num_levels();
  PolynomialLevelMeasure measure(m);
  const auto index = DigitalTraceIndex::Build(nd.dataset.store,
                                              {.num_functions = 800, .seed = 9});
  const auto queries = SampleQueries(*nd.dataset.store, 20, 606);

  PrintHeader("Figure 7.6", "search time vs memory size");
  PrintDatasetInfo(nd);
  {
    const PagedTraceSource probe(*nd.dataset.store,
                                 PresetHddSourceOptions(1));
    std::printf("trace data: %zu pages (%.1f MB modeled)\n",
                probe.num_pages(), probe.data_bytes() / 1048576.0);
  }
  TablePrinter t({"mem fraction", "top-1 (ms)", "top-10 (ms)", "top-50 (ms)",
                  "pages/query", "hit rate"});
  for (double frac : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    std::vector<std::string> row = {TablePrinter::Fmt(frac, 1)};
    uint64_t pages_read = 0, pages_hit = 0;
    for (int k : {1, 10, 50}) {
      // Fresh source per cell: a cold pool at this capacity, as the
      // memory-size experiment prescribes.
      auto src_opts = PresetHddSourceOptions(0);
      src_opts.pool_fraction = frac;
      PagedTraceSource src(*nd.dataset.store, src_opts);
      QueryOptions qopts;
      qopts.trace_source = &src;
      Timer timer;
      double io_seconds = 0.0;
      uint64_t cell_read = 0, cell_hit = 0;  // this (frac, k) cell only
      uint64_t cell_prefetch = 0;
      uint64_t cell_shards_pruned = 0, cell_threshold = 0, cell_bounds = 0;
      for (EntityId q : queries) {
        const TopKResult r = index.Query(q, k, measure, qopts);
        io_seconds += r.stats.io.modeled_io_seconds;
        cell_read += r.stats.io.pages_read;
        cell_hit += r.stats.io.pages_hit;
        cell_prefetch += r.stats.io.prefetch_hits;
        cell_shards_pruned += r.stats.shards_pruned;
        cell_threshold += r.stats.threshold_updates;
        cell_bounds += r.stats.router_bound_evals;
      }
      json.Counter("lock_wait_seconds", src.pool_stats().lock_wait_seconds);
      json.Counter("prefetch_hits", static_cast<double>(cell_prefetch));
      json.Counter("pages_read", static_cast<double>(cell_read));
      // Cross-shard pruning counters: structurally zero on this single-index
      // bench, emitted so the counters section has one schema across benches
      // (and so a routed variant of this bench would be comparable).
      json.Counter("shards_pruned", static_cast<double>(cell_shards_pruned));
      json.Counter("threshold_updates", static_cast<double>(cell_threshold));
      json.Counter("router_bound_evals", static_cast<double>(cell_bounds));
      pages_read += cell_read;
      pages_hit += cell_hit;
      const double wall = timer.ElapsedSeconds();
      const double modeled = (wall + io_seconds) / queries.size();
      row.push_back(TablePrinter::Fmt(modeled * 1e3, 2));
      json.AddRow()
          .Str("dataset", nd.name)
          .Int("entities", nd.dataset.num_entities())
          .Num("mem_fraction", frac)
          .Int("k", static_cast<uint64_t>(k))
          .Num("modeled_ms_per_query", modeled * 1e3)
          .Num("queries_per_sec", queries.size() / (wall + io_seconds))
          .Int("pages_read", cell_read)
          .Num("hit_rate",
               cell_hit + cell_read == 0
                   ? 0.0
                   : static_cast<double>(cell_hit) /
                         static_cast<double>(cell_hit + cell_read));
    }
    const uint64_t touched = pages_hit + pages_read;
    row.push_back(TablePrinter::Fmt(
        static_cast<double>(pages_read) / (3.0 * queries.size()), 1));
    row.push_back(TablePrinter::Fmt(
        touched == 0 ? 0.0
                     : static_cast<double>(pages_hit) /
                           static_cast<double>(touched),
        3));
    t.AddRow(std::move(row));
  }
  t.Print();
}

}  // namespace
}  // namespace dtrace::bench

int main() {
  dtrace::bench::BenchJson json("fig7_6");
  for (const auto& nd : dtrace::bench::BothDatasets(2000)) {
    dtrace::bench::Run(nd, json);
  }
  json.Write();
  return 0;
}
