// Figure 7.6 — search time vs. memory size. Raw traces live on the
// simulated disk (PagedTraceStore); every exact candidate evaluation fetches
// the candidate's record through an LRU buffer pool whose capacity is a
// fraction of the data size. Reported modeled time = wall time + modeled
// HDD I/O latency (DESIGN.md Sec. 3.4). Expected shape: super-linear drop
// with memory, flattening around 40-50% of the data size.
#include "bench/bench_util.h"
#include "storage/paged_trace_store.h"

namespace dtrace::bench {
namespace {

void Run(const NamedDataset& nd) {
  const int m = nd.dataset.hierarchy->num_levels();
  PolynomialLevelMeasure measure(m);
  const auto index = DigitalTraceIndex::Build(nd.dataset.store,
                                              {.num_functions = 800, .seed = 9});
  const auto queries = SampleQueries(*nd.dataset.store, 20, 606);

  // HDD-class 4K random read: ~5ms seek-dominated.
  SimDisk disk(/*read_latency_seconds=*/5e-3, /*write_latency_seconds=*/5e-3);
  PagedTraceStore paged(*nd.dataset.store, &disk);

  PrintHeader("Figure 7.6", "search time vs memory size");
  PrintDatasetInfo(nd);
  std::printf("trace data: %zu pages (%.1f MB modeled)\n", paged.num_pages(),
              paged.data_bytes() / 1048576.0);
  TablePrinter t({"mem fraction", "top-1 (ms)", "top-10 (ms)", "top-50 (ms)",
                  "miss rate"});
  for (double frac : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const size_t capacity = std::max<size_t>(
        1, static_cast<size_t>(frac * static_cast<double>(paged.num_pages())));
    std::vector<std::string> row = {TablePrinter::Fmt(frac, 1)};
    uint64_t hits = 0, misses = 0;
    for (int k : {1, 10, 50}) {
      BufferPool pool(&disk, capacity);
      disk.ResetStats();
      QueryOptions qopts;
      qopts.access_hook = [&](EntityId e) { paged.TouchEntity(&pool, e); };
      Timer timer;
      for (EntityId q : queries) index.Query(q, k, measure, qopts);
      const double wall = timer.ElapsedSeconds();
      const double modeled =
          (wall + disk.modeled_io_seconds()) / queries.size();
      row.push_back(TablePrinter::Fmt(modeled * 1e3, 2));
      hits += pool.hits();
      misses += pool.misses();
    }
    row.push_back(TablePrinter::Fmt(
        misses / std::max(1.0, static_cast<double>(hits + misses)), 3));
    t.AddRow(std::move(row));
  }
  t.Print();
}

}  // namespace
}  // namespace dtrace::bench

int main() {
  for (const auto& nd : dtrace::bench::BothDatasets(2000)) {
    dtrace::bench::Run(nd);
  }
  return 0;
}
