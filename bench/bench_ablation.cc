// Ablations of the design choices DESIGN.md calls out:
//   1. Hash family: structured HierarchicalMinHasher vs. the reference
//      ExactMinHasher — quantifies the PE cost of the O(1) structured
//      family's time-correlated values.
//   2. Node storage: routing-value-only (the paper's choice) vs. full group
//      signatures — pruning gain vs. index size and query-time hash work.
#include "bench/bench_util.h"

namespace dtrace::bench {
namespace {

void HashFamilyAblation() {
  // Small instance: the exact hasher evaluates upper-level cells in
  // O(#descendant bases).
  SynConfig config = PresetSyn(600, /*seed=*/51);
  config.grid_side = 16;
  config.hierarchy.m = 3;
  Dataset d = GenerateSyn(config);
  PolynomialLevelMeasure measure(d.hierarchy->num_levels());
  const auto queries = SampleQueries(*d.store, 10, 111);

  PrintHeader("Ablation 1", "hash family: structured vs exact (nh=256, k=10)");
  TablePrinter t({"hasher", "PE", "mean checked", "build (s)",
                  "hash tables (MB)"});
  for (auto kind : {IndexOptions::Hasher::kHierarchical,
                    IndexOptions::Hasher::kExact}) {
    // num_threads = 1 keeps the reported build time machine-independent.
    const auto index = DigitalTraceIndex::Build(
        d.store,
        {.num_functions = 256, .seed = 52, .hasher = kind, .num_threads = 1});
    const auto pe = MeasurePe(index, measure, queries, 10);
    t.AddRow({kind == IndexOptions::Hasher::kHierarchical ? "hierarchical"
                                                          : "exact",
              TablePrinter::Fmt(pe.mean_pe, 4),
              TablePrinter::Fmt(pe.mean_entities_checked, 1),
              TablePrinter::Fmt(index.build_seconds(), 2),
              TablePrinter::Fmt(index.HasherMemoryBytes() / 1048576.0, 2)});
  }
  t.Print();
}

void NodeStorageAblation() {
  Dataset d = MakeSynDataset(2000, /*seed=*/53);
  PolynomialLevelMeasure measure(d.hierarchy->num_levels());
  const auto queries = SampleQueries(*d.store, 10, 222);

  PrintHeader("Ablation 2",
              "node storage: routing value only vs full signature (nh=64)");
  TablePrinter t({"mode", "PE (k=10)", "mean checked", "tree size (KB)",
                  "mean query (ms)"});
  for (bool full : {false, true}) {
    const auto index = DigitalTraceIndex::Build(
        d.store,
        {.num_functions = 64, .seed = 54, .store_full_signatures = full});
    const auto pe = MeasurePe(index, measure, queries, 10);
    t.AddRow({full ? "full signature" : "routing value",
              TablePrinter::Fmt(pe.mean_pe, 4),
              TablePrinter::Fmt(pe.mean_entities_checked, 1),
              TablePrinter::Fmt(index.IndexMemoryBytes() / 1024.0, 1),
              TablePrinter::Fmt(pe.mean_query_seconds * 1e3, 2)});
  }
  t.Print();
  std::printf(
      "(full signatures prune more per node but store nh values per node "
      "and hash every query cell nh times per visited node)\n");
}

}  // namespace
}  // namespace dtrace::bench

int main() {
  dtrace::bench::HashFamilyAblation();
  dtrace::bench::NodeStorageAblation();
  return 0;
}
