// Figure 7.4 — PE vs. data characteristics: one sweep per hierarchical-IM
// parameter (alpha, beta, rho, gamma, zeta, a, b, m), regenerating SYN per
// point and reporting Top-1/Top-10/Top-50 PE. Expected shapes (Sec. 7.4):
//   alpha: descending (locality improves pruning)     beta: flat
//   rho: ascending            gamma: descending (steeper than rho)
//   zeta: descending          a, b: flat               m: ascending-ish
#include <functional>

#include "bench/bench_util.h"

namespace dtrace::bench {
namespace {

constexpr uint32_t kEntities = 1500;
constexpr int kNh = 400;

void Sweep(const char* param, const std::vector<double>& values,
           const std::function<SynConfig(double)>& configure) {
  PrintHeader("Figure 7.4", (std::string("PE vs ") + param).c_str());
  TablePrinter t({param, "PE top-1", "PE top-10", "PE top-50"});
  for (double v : values) {
    // Average over independently generated datasets to smooth generator
    // noise (the paper averages over query entities at 100M scale).
    double pe[3] = {0, 0, 0};
    constexpr int kSeeds = 3;
    for (int s = 0; s < kSeeds; ++s) {
      SynConfig config = configure(v);
      config.seed += 1000 * s;
      const Dataset d = GenerateSyn(config);
      const auto index = DigitalTraceIndex::Build(
          d.store, {.num_functions = kNh, .seed = 3});
      PolynomialLevelMeasure measure(d.hierarchy->num_levels());
      const auto queries = SampleQueries(*d.store, 10, 909 + s);
      const int ks[3] = {1, 10, 50};
      for (int i = 0; i < 3; ++i) {
        pe[i] += MeasurePe(index, measure, queries, ks[i]).mean_pe / kSeeds;
      }
    }
    t.AddRow({TablePrinter::Fmt(v, 2), TablePrinter::Fmt(pe[0], 4),
              TablePrinter::Fmt(pe[1], 4), TablePrinter::Fmt(pe[2], 4)});
  }
  t.Print();
}

SynConfig Base() {
  SynConfig config = PresetSyn(kEntities, /*seed=*/11);
  return config;
}

}  // namespace
}  // namespace dtrace::bench

int main() {
  using dtrace::SynConfig;
  using dtrace::bench::Base;
  using dtrace::bench::Sweep;

  Sweep("alpha", {0.2, 0.6, 1.0, 1.5, 2.0}, [](double v) {
    SynConfig c = Base();
    c.mobility.alpha = v;
    return c;
  });
  Sweep("beta", {0.1, 0.3, 0.5, 0.8, 1.0}, [](double v) {
    SynConfig c = Base();
    c.mobility.beta = v;
    return c;
  });
  Sweep("rho", {0.1, 0.3, 0.6, 0.8, 1.0}, [](double v) {
    SynConfig c = Base();
    c.mobility.rho = v;
    return c;
  });
  Sweep("gamma", {0.1, 0.2, 0.4, 0.7, 1.0}, [](double v) {
    SynConfig c = Base();
    c.mobility.gamma = v;
    return c;
  });
  Sweep("zeta", {0.2, 0.6, 1.2, 1.6, 2.0}, [](double v) {
    SynConfig c = Base();
    c.mobility.zeta = v;
    return c;
  });
  Sweep("a", {1.0, 1.25, 1.5, 1.75, 2.0}, [](double v) {
    SynConfig c = Base();
    c.hierarchy.a = v;
    return c;
  });
  Sweep("b", {1.0, 1.25, 1.5, 1.75, 2.0}, [](double v) {
    SynConfig c = Base();
    c.hierarchy.b = v;
    return c;
  });
  Sweep("m", {3, 4, 5, 6}, [](double v) {
    SynConfig c = Base();
    c.hierarchy.m = static_cast<int>(v);
    return c;
  });
  return 0;
}
