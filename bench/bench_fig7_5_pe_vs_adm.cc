// Figure 7.5 — PE vs. ADM parameters u (level weight) and v (duration
// weight) over both datasets. Expected shape (Sec. 7.5): smaller u and
// larger v yield better pruning, because signatures encode duration
// (ST-cells) but not AjPI level.
#include "bench/bench_util.h"

namespace dtrace::bench {
namespace {

void Run(const NamedDataset& nd) {
  const int m = nd.dataset.hierarchy->num_levels();
  const auto index = DigitalTraceIndex::Build(nd.dataset.store,
                                              {.num_functions = 800, .seed = 5});
  const auto queries = SampleQueries(*nd.dataset.store, 15, 505);

  PrintHeader("Figure 7.5", "PE vs ADM parameters (k=10)");
  PrintDatasetInfo(nd);
  TablePrinter t({"v \\ u", "u=2", "u=3", "u=4", "u=5"});
  for (double v : {2.0, 3.0, 4.0, 5.0}) {
    std::vector<std::string> row = {"v=" + TablePrinter::Fmt(v, 0)};
    for (double u : {2.0, 3.0, 4.0, 5.0}) {
      PolynomialLevelMeasure measure(m, u, v);
      row.push_back(
          TablePrinter::Fmt(MeasurePe(index, measure, queries, 10).mean_pe, 4));
    }
    t.AddRow(std::move(row));
  }
  t.Print();
}

}  // namespace
}  // namespace dtrace::bench

int main() {
  for (const auto& nd : dtrace::bench::BothDatasets(2000)) {
    dtrace::bench::Run(nd);
  }
  return 0;
}
