#!/usr/bin/env python3
"""Fail when a bench's queries/sec regressed vs. a checked-in baseline.

Usage:
    check_regression.py CURRENT.json BASELINE.json [--max-drop 0.30]

Both files are BENCH_*.json emissions ({"bench": ..., "rows": [...],
"counters": {...}}). Rows are matched on every shared non-measurement field
(mode, entities, dataset, k, mem_fraction, workers, prefetch_depth, ...);
for each matched pair with a positive baseline `queries_per_sec`, the
current value must be at least (1 - max_drop) * baseline. Exits non-zero
listing every regressed row, so CI can gate on it. The run-wide counters
(lock_wait_seconds, prefetch_hits, shards_pruned, ...) are printed as
informational deltas next to the gate — they explain qps moves but never
fail the check.

Baseline json files live in bench/baselines/ and are refreshed deliberately
(copy a trusted run's BENCH_*.json) whenever the expected performance level
changes.
"""

import argparse
import json
import sys

# Fields that carry measurements rather than identity; everything else in a
# row is treated as a match key. "shards", "routing", "paged_tree",
# "compressed" and "writer_threads" are informational-only by design:
# sharded/routed/paged-tree/compressed/mixed runs must gate directly against
# the corresponding plain baseline rows (each of those layers is required to
# be answer-identical, and sharding/routing/compression also at least
# qps-neutral; the mixed reads-during-writes leg gates with a looser floor
# set in CI).
MEASUREMENT_FIELDS = {
    "queries_per_sec",
    "pe",
    "mean_entities_checked",
    "pages_read",
    "hit_rate",
    "index_seconds",
    "modeled_ms_per_query",
    "shards",
    "routing",
    "paged_tree",
    "compressed",
    "checksums",
    "writer_threads",
    # Snapshot-restart rows (mode "snapshot"): the persistence timings are
    # measurements reported next to the gated post-load qps, never match
    # keys — a baseline cut before a save-path change still gates.
    "snapshot_save_seconds",
    "restart_seconds",
}

# Counters reported as informational deltas next to the qps gate (never
# gated): run-wide perf signals whose drift explains a qps move — lock
# contention, prefetch engagement, shards skipped by the coarse router, ...
INFORMATIONAL_COUNTERS = (
    "lock_wait_seconds",
    "prefetch_hits",
    "pages_read",
    "tree_pages_read",
    "tree_page_hits",
    "pool_evictions",
    "shards_pruned",
    "threshold_updates",
    "router_bound_evals",
    "compressed_bytes",
    "raw_bytes",
    "compression_ratio",
    # Fault accounting (DESIGN-storage.md "Fault model and integrity"):
    # always informational, never a gate — fault-injection runs are a
    # robustness harness, not a perf target.
    "io_retries",
    "checksum_failures",
    "faults_injected",
    "pages_quarantined",
    # Reader/writer coordination (DESIGN-sharding.md "Concurrency model"):
    # churn volume and snapshot/latch accounting for the mixed leg. Always
    # informational — the qps gate is the perf contract; these explain it.
    "writer_ops",
    "snapshot_publishes",
    "reader_blocked_ns",
    "writer_blocked_ns",
    # Crash-safe persistence (DESIGN-storage.md "Snapshot format and
    # recovery protocol"): save/restart wall times and on-disk footprint of
    # the snapshot-restart leg. Informational — the gate is the post-load
    # qps row; these explain a move (e.g. footprint growth slowing load).
    "snapshot_save_seconds",
    "restart_seconds",
    "snapshot_bytes",
)


def row_key(row):
    return tuple(sorted(
        (k, v) for k, v in row.items() if k not in MEASUREMENT_FIELDS))


def load_doc(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("rows", []), doc.get("counters", {})


def find_match(base_row, current_rows):
    """The current row identifying the same configuration as base_row.

    Exact key match first. When the key sets differ — a newer bench added an
    identity field the baseline predates (or vice versa) — fall back to
    matching on the fields both rows share, so checked-in baselines stay
    usable across emission-schema growth. The fallback must be unique;
    an ambiguous baseline needs a refresh, so it matches nothing (warned).
    """
    base_key = row_key(base_row)
    exact = [r for r in current_rows if row_key(r) == base_key]
    if exact:
        return exact[0]
    base_fields = dict(base_key)

    def shared_fields_agree(row):
        cur_fields = dict(row_key(row))
        shared = set(base_fields) & set(cur_fields)
        return shared and all(base_fields[k] == cur_fields[k]
                              for k in shared)

    loose = [r for r in current_rows if shared_fields_agree(r)]
    if len(loose) == 1:
        return loose[0]
    if len(loose) > 1:
        print(f"WARNING: baseline row matches {len(loose)} current rows "
              f"on shared fields; skipping: {base_fields}")
    return None


def print_counter_deltas(current, baseline):
    """Informational: counter movements vs the baseline, printed alongside
    the qps gate instead of silently dropped. Never affects the exit code."""
    keys = [k for k in INFORMATIONAL_COUNTERS
            if k in current or k in baseline]
    keys += sorted(k for k in set(current) | set(baseline)
                   if k not in INFORMATIONAL_COUNTERS)
    if not keys:
        return
    print("\ncounter deltas vs baseline (informational):")
    for key in keys:
        cur = current.get(key)
        base = baseline.get(key)
        if cur is None:
            print(f"  [INFO] {key}: (absent) <- baseline {base:g}")
        elif base is None:
            print(f"  [INFO] {key}: {cur:g} (no baseline)")
        elif base != 0:
            pct = 100.0 * (cur - base) / base
            print(f"  [INFO] {key}: {base:g} -> {cur:g} ({pct:+.1f}%)")
        else:
            print(f"  [INFO] {key}: {base:g} -> {cur:g}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--max-drop", type=float, default=0.30,
                        help="maximum tolerated fractional qps drop")
    args = parser.parse_args()

    current, current_counters = load_doc(args.current)
    baseline, baseline_counters = load_doc(args.baseline)

    compared = 0
    regressions = []
    for base_row in baseline:
        base_qps = base_row.get("queries_per_sec", 0)
        if not base_qps or base_qps <= 0:
            continue
        key = row_key(base_row)
        cur_row = find_match(base_row, current)
        if cur_row is None:
            print(f"WARNING: baseline row missing from current run: {key}")
            continue
        cur_qps = cur_row.get("queries_per_sec", 0)
        compared += 1
        floor = (1.0 - args.max_drop) * base_qps
        status = "OK " if cur_qps >= floor else "REG"
        print(f"[{status}] qps {cur_qps:10.2f} vs baseline {base_qps:10.2f} "
              f"(floor {floor:10.2f})  {dict(key)}")
        if cur_qps < floor:
            regressions.append((key, base_qps, cur_qps))

    print_counter_deltas(current_counters, baseline_counters)

    if compared == 0:
        print("ERROR: no comparable rows between current and baseline")
        return 2
    if regressions:
        print(f"\n{len(regressions)} row(s) regressed more than "
              f"{args.max_drop:.0%} vs baseline:")
        for key, base_qps, cur_qps in regressions:
            print(f"  {dict(key)}: {base_qps:.2f} -> {cur_qps:.2f} qps")
        return 1
    print(f"\nAll {compared} row(s) within {args.max_drop:.0%} of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
