// Microbenchmarks (google-benchmark): index build, signature computation,
// query latency per k, brute-force comparison, intersection primitives
// (span-based and packed), and the cold-byte codec (encode/decode/packed
// galloping vs the decoded baseline).
#include <benchmark/benchmark.h>

#include <random>

#include "core/index.h"
#include "core/signature.h"
#include "exp/harness.h"
#include "exp/presets.h"
#include "hash/hierarchical_hasher.h"
#include "trace/trace_source.h"
#include "util/codec.h"

namespace dtrace {
namespace {

const Dataset& SharedDataset() {
  static const Dataset* d = new Dataset(MakeSynDataset(1000, /*seed=*/61));
  return *d;
}

const DigitalTraceIndex& SharedIndex() {
  static const DigitalTraceIndex* index = new DigitalTraceIndex(
      DigitalTraceIndex::Build(SharedDataset().store, {.num_functions = 400}));
  return *index;
}

void BM_IndexBuild(benchmark::State& state) {
  const auto& d = SharedDataset();
  const int nh = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto index = DigitalTraceIndex::Build(d.store, {.num_functions = nh});
    benchmark::DoNotOptimize(index.tree().num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * d.num_entities());
}
BENCHMARK(BM_IndexBuild)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_SignatureCompute(benchmark::State& state) {
  const auto& d = SharedDataset();
  HierarchicalMinHasher hasher(*d.hierarchy, d.horizon,
                               static_cast<int>(state.range(0)), 1);
  SignatureComputer sigs(*d.store, hasher);
  EntityId e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sigs.Compute(e % d.num_entities()));
    ++e;
  }
}
BENCHMARK(BM_SignatureCompute)->Arg(100)->Arg(1000);

void BM_TopKQuery(benchmark::State& state) {
  const auto& index = SharedIndex();
  PolynomialLevelMeasure measure(
      SharedDataset().hierarchy->num_levels());
  const auto queries = SampleQueries(*SharedDataset().store, 32, 3);
  const int k = static_cast<int>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query(queries[i % queries.size()], k,
                                         measure));
    ++i;
  }
}
BENCHMARK(BM_TopKQuery)->Arg(1)->Arg(10)->Arg(50);

void BM_BruteForceQuery(benchmark::State& state) {
  const auto& index = SharedIndex();
  PolynomialLevelMeasure measure(SharedDataset().hierarchy->num_levels());
  const auto queries = SampleQueries(*SharedDataset().store, 8, 3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.BruteForce(queries[i % queries.size()], 10, measure));
    ++i;
  }
}
BENCHMARK(BM_BruteForceQuery);

void BM_IntersectionSize(benchmark::State& state) {
  const auto& d = SharedDataset();
  const int m = d.hierarchy->num_levels();
  EntityId a = 1, b = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.store->IntersectionSize(a, b, m));
    a = (a + 1) % d.num_entities();
    b = (b + 3) % d.num_entities();
  }
}
BENCHMARK(BM_IntersectionSize);

std::vector<uint32_t> BenchIds(size_t n, uint32_t max_gap, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<uint32_t> ids;
  ids.reserve(n);
  uint32_t v = 0;
  for (size_t i = 0; i < n; ++i) {
    ids.push_back(v);
    v += 1 + rng() % max_gap;
  }
  return ids;
}

void BM_IdListEncode(benchmark::State& state) {
  const auto ids = BenchIds(static_cast<size_t>(state.range(0)), 30, 7);
  std::vector<uint8_t> enc;
  for (auto _ : state) {
    enc.clear();
    benchmark::DoNotOptimize(EncodeIdList(ids, &enc));
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}
BENCHMARK(BM_IdListEncode)->Arg(128)->Arg(4096);

void BM_IdListDecode(benchmark::State& state) {
  const auto ids = BenchIds(static_cast<size_t>(state.range(0)), 30, 7);
  std::vector<uint8_t> enc;
  EncodeIdList(ids, &enc);
  std::vector<uint32_t> dec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeIdList(enc.data(), enc.size(), &dec));
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}
BENCHMARK(BM_IdListDecode)->Arg(128)->Arg(4096);

// The packed galloping intersection against its decoded-span baseline: the
// packed variant must win whenever the probe side is sparse enough that
// whole blocks are skipped undecoded.
void BM_IntersectSpans(benchmark::State& state) {
  const auto a = BenchIds(4096, 30, 7);
  const auto b = BenchIds(static_cast<size_t>(state.range(0)), 500, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IntersectSortedSize({a.data(), a.size()}, {b.data(), b.size()}));
  }
}
BENCHMARK(BM_IntersectSpans)->Arg(64)->Arg(1024);

void BM_IntersectPackedVsSorted(benchmark::State& state) {
  const auto a = BenchIds(4096, 30, 7);
  const auto b = BenchIds(static_cast<size_t>(state.range(0)), 500, 11);
  std::vector<uint8_t> enc;
  EncodeIdList(a, &enc);
  const PackedIdListView view(enc.data(), enc.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectPackedSorted(view, b));
  }
}
BENCHMARK(BM_IntersectPackedVsSorted)->Arg(64)->Arg(1024);

void BM_IncrementalInsert(benchmark::State& state) {
  const auto& d = SharedDataset();
  std::vector<EntityId> most;
  for (EntityId e = 100; e < d.num_entities(); ++e) most.push_back(e);
  auto index =
      DigitalTraceIndex::Build(d.store, {.num_functions = 400}, most);
  EntityId e = 0;
  for (auto _ : state) {
    index.InsertEntity(e % 100);
    state.PauseTiming();
    index.RemoveEntity(e % 100);
    state.ResumeTiming();
    ++e;
  }
}
BENCHMARK(BM_IncrementalInsert);

}  // namespace
}  // namespace dtrace

BENCHMARK_MAIN();
