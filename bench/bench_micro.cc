// Microbenchmarks (google-benchmark): index build, signature computation,
// query latency per k, brute-force comparison, intersection primitive.
#include <benchmark/benchmark.h>

#include "core/index.h"
#include "core/signature.h"
#include "exp/harness.h"
#include "exp/presets.h"
#include "hash/hierarchical_hasher.h"

namespace dtrace {
namespace {

const Dataset& SharedDataset() {
  static const Dataset* d = new Dataset(MakeSynDataset(1000, /*seed=*/61));
  return *d;
}

const DigitalTraceIndex& SharedIndex() {
  static const DigitalTraceIndex* index = new DigitalTraceIndex(
      DigitalTraceIndex::Build(SharedDataset().store, {.num_functions = 400}));
  return *index;
}

void BM_IndexBuild(benchmark::State& state) {
  const auto& d = SharedDataset();
  const int nh = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto index = DigitalTraceIndex::Build(d.store, {.num_functions = nh});
    benchmark::DoNotOptimize(index.tree().num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * d.num_entities());
}
BENCHMARK(BM_IndexBuild)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_SignatureCompute(benchmark::State& state) {
  const auto& d = SharedDataset();
  HierarchicalMinHasher hasher(*d.hierarchy, d.horizon,
                               static_cast<int>(state.range(0)), 1);
  SignatureComputer sigs(*d.store, hasher);
  EntityId e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sigs.Compute(e % d.num_entities()));
    ++e;
  }
}
BENCHMARK(BM_SignatureCompute)->Arg(100)->Arg(1000);

void BM_TopKQuery(benchmark::State& state) {
  const auto& index = SharedIndex();
  PolynomialLevelMeasure measure(
      SharedDataset().hierarchy->num_levels());
  const auto queries = SampleQueries(*SharedDataset().store, 32, 3);
  const int k = static_cast<int>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query(queries[i % queries.size()], k,
                                         measure));
    ++i;
  }
}
BENCHMARK(BM_TopKQuery)->Arg(1)->Arg(10)->Arg(50);

void BM_BruteForceQuery(benchmark::State& state) {
  const auto& index = SharedIndex();
  PolynomialLevelMeasure measure(SharedDataset().hierarchy->num_levels());
  const auto queries = SampleQueries(*SharedDataset().store, 8, 3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.BruteForce(queries[i % queries.size()], 10, measure));
    ++i;
  }
}
BENCHMARK(BM_BruteForceQuery);

void BM_IntersectionSize(benchmark::State& state) {
  const auto& d = SharedDataset();
  const int m = d.hierarchy->num_levels();
  EntityId a = 1, b = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.store->IntersectionSize(a, b, m));
    a = (a + 1) % d.num_entities();
    b = (b + 3) % d.num_entities();
  }
}
BENCHMARK(BM_IntersectionSize);

void BM_IncrementalInsert(benchmark::State& state) {
  const auto& d = SharedDataset();
  std::vector<EntityId> most;
  for (EntityId e = 100; e < d.num_entities(); ++e) most.push_back(e);
  auto index =
      DigitalTraceIndex::Build(d.store, {.num_functions = 400}, most);
  EntityId e = 0;
  for (auto _ : state) {
    index.InsertEntity(e % 100);
    state.PauseTiming();
    index.RemoveEntity(e % 100);
    state.ResumeTiming();
    ++e;
  }
}
BENCHMARK(BM_IncrementalInsert);

}  // namespace
}  // namespace dtrace

BENCHMARK_MAIN();
