// Figure 7.9 — update cost: time to apply a batch of entity updates to an
// already-built MinSigTree, as a function of nh, with 100% / 70% / 40% of
// the updated entities already existing in the index (the rest are new
// insertions). Expected shape (Sec. 7.8): linear in nh; new entities are
// cheaper than modifications (no locate+remove step).
#include "bench/bench_util.h"
#include "util/rng.h"

namespace dtrace::bench {
namespace {

constexpr uint32_t kEntities = 2000;
constexpr uint32_t kUpdates = 200;

std::vector<PresenceRecord> FreshTrace(const Dataset& d, EntityId e,
                                       Rng& rng) {
  std::vector<PresenceRecord> records;
  const int n = 5 + static_cast<int>(rng.NextBelow(40));
  for (int i = 0; i < n; ++i) {
    const auto unit =
        static_cast<UnitId>(rng.NextBelow(d.hierarchy->num_base_units()));
    const auto t = static_cast<TimeStep>(rng.NextBelow(d.horizon - 1));
    records.push_back({e, unit, t, t + 1});
  }
  return records;
}

void Run() {
  PrintHeader("Figure 7.9", "update cost (batch of 200 entities)");
  TablePrinter t({"nh", "100% existing (ms)", "70% existing (ms)",
                  "40% existing (ms)"});
  for (int nh : {200, 400, 600, 800, 1200, 1600, 2000}) {
    std::vector<std::string> row = {std::to_string(nh)};
    for (double existing_frac : {1.0, 0.7, 0.4}) {
      // Fresh dataset per cell so state never leaks between measurements.
      Dataset d = MakeSynDataset(kEntities, /*seed=*/17);
      // Index everyone except the "new" tail of the update batch.
      const auto num_existing =
          static_cast<uint32_t>(existing_frac * kUpdates);
      std::vector<EntityId> initial;
      for (EntityId e = 0; e < kEntities; ++e) {
        if (e >= num_existing && e < kUpdates) continue;  // new entities
        initial.push_back(e);
      }
      auto index = DigitalTraceIndex::Build(
          d.store, {.num_functions = nh, .seed = 23}, initial);
      Rng rng(31);
      // Pre-generate traces so only index maintenance is timed.
      std::vector<std::vector<PresenceRecord>> traces;
      for (EntityId e = 0; e < kUpdates; ++e) {
        traces.push_back(FreshTrace(d, e, rng));
      }
      for (EntityId e = 0; e < kUpdates; ++e) {
        index.mutable_store().ReplaceEntity(e, traces[e]);
      }
      Timer timer;
      for (EntityId e = 0; e < kUpdates; ++e) {
        if (e < num_existing) {
          index.UpdateEntity(e);  // steps 1-4 of Sec. 7.8
        } else {
          index.InsertEntity(e);  // steps 3-4 only
        }
      }
      row.push_back(TablePrinter::Fmt(timer.ElapsedMillis(), 1));
    }
    t.AddRow(std::move(row));
  }
  t.Print();
}

}  // namespace
}  // namespace dtrace::bench

int main() {
  dtrace::bench::Run();
  return 0;
}
