// Figure 7.1 — data distribution.
//   (a)/(b): mean number of entities forming AjPIs with a query entity, per
//            sp-index level (log-scale in the paper; we print raw counts and
//            the level-to-level decay factor).
//   (c)/(d): AjPI duration distribution per level (counts of partner
//            entities bucketed by total co-occurrence duration).
#include "bench/bench_util.h"

namespace dtrace::bench {
namespace {

void Run(const NamedDataset& nd) {
  const auto& store = *nd.dataset.store;
  const int m = nd.dataset.hierarchy->num_levels();
  const auto queries = SampleQueries(store, 25, 101);

  // (a)/(b): partners per level.
  std::vector<double> partners(m, 0.0);
  // (c)/(d): duration buckets per level (duration = co-occurring cells).
  const std::vector<std::pair<uint32_t, uint32_t>> buckets = {
      {1, 5}, {6, 15}, {16, 40}, {41, 1u << 30}};
  std::vector<std::vector<double>> by_bucket(
      m, std::vector<double>(buckets.size(), 0.0));

  for (EntityId q : queries) {
    for (EntityId e = 0; e < store.num_entities(); ++e) {
      if (e == q) continue;
      for (Level l = 1; l <= m; ++l) {
        const uint32_t inter = store.IntersectionSize(q, e, l);
        if (inter == 0) break;  // no AjPI at finer levels either
        partners[l - 1] += 1.0;
        for (size_t b = 0; b < buckets.size(); ++b) {
          if (inter >= buckets[b].first && inter <= buckets[b].second) {
            by_bucket[l - 1][b] += 1.0;
          }
        }
      }
    }
  }

  PrintHeader("Figure 7.1(a/b)", "entities forming AjPIs per level");
  PrintDatasetInfo(nd);
  TablePrinter t(
      {"level", "mean partners", "fraction of |E|", "decay vs prev"});
  double prev = 0.0;
  for (Level l = 1; l <= m; ++l) {
    const double mean = partners[l - 1] / queries.size();
    t.AddRow({std::to_string(l), TablePrinter::Fmt(mean, 1),
              TablePrinter::Fmt(mean / store.num_entities(), 4),
              l == 1 ? "-" : TablePrinter::Fmt(prev / std::max(1.0, mean), 2)});
    prev = mean;
  }
  t.Print();

  PrintHeader("Figure 7.1(c/d)", "AjPI duration distribution per level");
  TablePrinter d({"level", "dur 1-5", "dur 6-15", "dur 16-40", "dur >40"});
  for (Level l = 1; l <= m; ++l) {
    std::vector<std::string> row = {std::to_string(l)};
    for (size_t b = 0; b < buckets.size(); ++b) {
      row.push_back(
          TablePrinter::Fmt(by_bucket[l - 1][b] / queries.size(), 1));
    }
    d.AddRow(std::move(row));
  }
  d.Print();
}

}  // namespace
}  // namespace dtrace::bench

int main() {
  for (const auto& nd : dtrace::bench::BothDatasets(3000)) {
    dtrace::bench::Run(nd);
  }
  return 0;
}
